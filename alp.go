// Package alp is a pure-Go implementation of ALP (Adaptive Lossless
// floating-Point compression, Afroozeh, Kuffó & Boncz, SIGMOD'24): a
// vectorized, lossless codec for float64/float32 columns that encodes
// doubles originating from decimals as small integers — one exponent
// and factor per 1024-value vector, found by two-level sampling — and
// adaptively falls back to front-bit compression (ALP_rd) for
// high-precision "real doubles".
//
// Compression is bit-exact: every NaN payload, signed zero, infinity
// and subnormal round-trips. Compressed columns are self-describing
// byte streams organized in row-groups of 100 vectors; any vector can
// be decompressed without touching the rest, which is what enables
// predicate push-down and efficient skipping in scan pipelines.
//
// Quick start:
//
//	data := alp.Encode(values)          // []float64 -> compressed bytes
//	back, err := alp.Decode(data)       // bytes -> []float64
//
// Columnar access:
//
//	col, err := alp.Open(data)
//	buf := make([]float64, alp.VectorSize)
//	n, err := col.ReadVector(7, buf)    // decompress only vector 7
//
// Streaming:
//
//	w := alp.NewWriter()
//	w.Write(chunk1); w.Write(chunk2)
//	data := w.Close()
package alp

import (
	"errors"
	"fmt"
	"io"

	"github.com/goalp/alp/internal/format"
	"github.com/goalp/alp/internal/pipeline"
	"github.com/goalp/alp/internal/vector"
)

// VectorSize is the number of values ALP encodes and decodes at a time.
const VectorSize = vector.Size

// RowGroupSize is the number of values per row-group, the granularity
// of scheme selection and first-level sampling.
const RowGroupSize = vector.RowGroupSize

// ErrCorrupt is returned when a compressed stream fails validation.
var ErrCorrupt = format.ErrCorrupt

// Encode compresses values and returns a self-describing byte stream.
// Columns spanning more than one row-group are encoded by a worker
// pool, one worker per CPU; the output is byte-identical to a
// single-worker encode (see EncodeParallel).
func Encode(values []float64) []byte {
	return EncodeParallel(values, 0)
}

// EncodeParallel is Encode with an explicit worker count: row-groups
// are sampled and encoded concurrently by a bounded, morsel-style
// worker pool and reassembled in row-group order, so the output is
// byte-identical at every worker count. workers <= 0 means one worker
// per CPU; 1 forces the serial path. The fan-out is clamped to the
// number of row-groups (one per 102400 values), so small inputs encode
// inline with no goroutine overhead.
func EncodeParallel(values []float64, workers int) []byte {
	return format.EncodeColumnParallel(values, workers).Marshal()
}

// Decode decompresses a stream produced by Encode (or Writer). Columns
// spanning more than one row-group are decoded by a worker pool, one
// worker per CPU; the result is bit-identical to a single-worker
// decode (see DecodeParallel).
func Decode(data []byte) ([]float64, error) {
	return DecodeParallel(data, 0)
}

// DecodeParallel is Decode with an explicit worker count: workers claim
// row-groups morsel-style and decompress each vector directly into its
// slot of the preallocated result slice. workers <= 0 means one worker
// per CPU; 1 forces the serial path.
func DecodeParallel(data []byte, workers int) ([]float64, error) {
	col, err := format.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	return col.DecodeParallel(workers), nil
}

// Column provides random access into a compressed column.
//
// A Column's ReadVector method is not safe for concurrent use: it
// reuses an internal scratch buffer. For parallel scans, use
// ReadVectorInto with one caller-owned scratch buffer per goroutine —
// the compressed representation itself is immutable and may be shared
// freely across goroutines.
type Column struct {
	col     *format.Column
	scratch []int64
}

// Compress encodes values into an in-memory Column, using one encode
// worker per CPU (see CompressParallel).
func Compress(values []float64) *Column {
	return CompressParallel(values, 0)
}

// CompressParallel is Compress with an explicit worker count; the
// resulting Column is identical at every worker count. workers <= 0
// means one worker per CPU; 1 forces the serial path.
func CompressParallel(values []float64, workers int) *Column {
	return &Column{col: format.EncodeColumnParallel(values, workers), scratch: make([]int64, vector.Size)}
}

// Open parses a compressed stream for random access.
func Open(data []byte) (*Column, error) {
	col, err := format.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	return &Column{col: col, scratch: make([]int64, vector.Size)}, nil
}

// Bytes serializes the column.
func (c *Column) Bytes() []byte { return c.col.Marshal() }

// Len returns the number of values in the column.
func (c *Column) Len() int { return c.col.N }

// NumVectors returns the number of vectors in the column.
func (c *Column) NumVectors() int { return c.col.NumVectors() }

// ReadVector decompresses vector i into dst and returns the number of
// values written. dst must have room for VectorSize values. Only the
// addressed vector is decompressed.
func (c *Column) ReadVector(i int, dst []float64) (int, error) {
	if i < 0 || i >= c.col.NumVectors() {
		return 0, fmt.Errorf("alp: vector %d out of range [0, %d)", i, c.col.NumVectors())
	}
	if len(dst) < c.col.VectorLen(i) {
		return 0, errors.New("alp: destination buffer too small")
	}
	return c.col.DecodeVector(i, dst, c.scratch), nil
}

// ReadVectorInto is ReadVector with caller-owned decode state: scratch
// is the integer staging buffer the decimal scheme decodes through. It
// must hold at least VectorSize int64s (pass nil to allocate per call).
// Because the Column itself is only read, any number of goroutines may
// call ReadVectorInto concurrently on the same Column as long as each
// uses its own dst and scratch — no per-goroutine re-Open needed.
func (c *Column) ReadVectorInto(i int, dst []float64, scratch []int64) (int, error) {
	if i < 0 || i >= c.col.NumVectors() {
		return 0, fmt.Errorf("alp: vector %d out of range [0, %d)", i, c.col.NumVectors())
	}
	if len(dst) < c.col.VectorLen(i) {
		return 0, errors.New("alp: destination buffer too small")
	}
	if scratch != nil && len(scratch) < c.col.VectorLen(i) {
		return 0, errors.New("alp: scratch buffer too small (need VectorSize int64s)")
	}
	return c.col.DecodeVector(i, dst, scratch), nil
}

// Values decompresses the whole column, using one decode worker per
// CPU for columns spanning more than one row-group (see
// ValuesParallel).
func (c *Column) Values() []float64 { return c.ValuesParallel(0) }

// ValuesParallel decompresses the whole column with an explicit worker
// count: workers claim row-groups morsel-style and decode every vector
// through ReadVectorInto — each with its own scratch buffer — straight
// into the preallocated result slice, so the result is bit-identical
// to the serial decode. workers <= 0 means one worker per CPU; 1
// forces the serial path.
func (c *Column) ValuesParallel(workers int) []float64 {
	out := make([]float64, c.col.N)
	scratches := make([][]int64, pipeline.Workers(workers))
	pipeline.Run(len(c.col.RowGroups), workers, func(worker, g int) {
		if scratches[worker] == nil {
			scratches[worker] = make([]int64, vector.Size)
		}
		first := g * vector.RowGroupVectors
		for j := 0; j < vector.VectorsIn(c.col.RowGroups[g].N); j++ {
			lo, hi := vector.Bounds(first+j, c.col.N)
			// The compressed column is immutable, so concurrent
			// ReadVectorInto calls with per-worker dst/scratch are safe.
			c.ReadVectorInto(first+j, out[lo:hi], scratches[worker])
		}
	})
	return out
}

// Sum aggregates the column without materializing it.
func (c *Column) Sum() float64 { return c.col.Sum() }

// BitsPerValue reports the compression ratio in bits per value
// (uncompressed float64 data is 64 bits per value).
func (c *Column) BitsPerValue() float64 { return c.col.BitsPerValue() }

// CompressedSize returns the compressed payload size in bytes.
func (c *Column) CompressedSize() int { return c.col.SizeBits() / 8 }

// UsedRD reports whether any row-group used the ALP_rd scheme.
func (c *Column) UsedRD() bool { return c.col.UsedRD() }

// Exceptions returns the total number of exception slots across all
// vectors of the column — values the decimal scheme (or the ALP_rd
// dictionary) could not represent and stored verbatim instead.
func (c *Column) Exceptions() int { return c.col.Exceptions() }

// NumRowGroups returns the number of row-groups in the column.
func (c *Column) NumRowGroups() int { return len(c.col.RowGroups) }

// Scheme returns the encoding scheme first-level sampling chose for
// row-group g (SchemeALP or SchemeRD).
func (c *Column) Scheme(g int) (Scheme, error) {
	if g < 0 || g >= len(c.col.RowGroups) {
		return 0, fmt.Errorf("alp: row-group %d out of range [0, %d)", g, len(c.col.RowGroups))
	}
	return Scheme(c.col.RowGroups[g].Scheme), nil
}

// SumRange sums the values in [lo, hi], using per-vector min/max zone
// maps to skip vectors that cannot contain qualifying values — a range
// predicate pushed down into the compressed scan. It returns the sum,
// the number of matching values, and the number of vectors actually
// decompressed (the rest were skipped without touching their bytes).
func (c *Column) SumRange(lo, hi float64) (sum float64, count, vectorsTouched int) {
	return c.col.SumRange(lo, hi)
}

// FilterAggResult carries the aggregates of a filtered scan
// (AggRange). Min and Max are +Inf/-Inf when Count is zero; Touched is
// the number of vectors whose payload was examined (the rest were
// skipped via zone maps).
type FilterAggResult = format.FilterAggResult

// AggRange computes SUM, COUNT, MIN and MAX over the values in
// [lo, hi] with encoded-domain predicate pushdown: zone maps skip
// whole vectors, and surviving decimal-scheme vectors evaluate the
// predicate directly on their FFOR-packed integers — the bounds are
// translated into each vector's (e, f) domain, which is exact because
// ALP's decode map is monotone in the encoded integer — so
// non-qualifying rows are never materialized as floats. ALP_rd
// row-groups fall back to decode-then-filter. NaN values never match.
func (c *Column) AggRange(lo, hi float64) FilterAggResult {
	return c.col.AggRange(lo, hi)
}

// EncodedVector returns vector i serialized as a standalone
// self-describing envelope: the vector's compressed payload plus the
// row-group state (ALP_rd cut/dictionary) a decoder needs, so the
// envelope decodes without the rest of the column. This is the unit
// alpserved ships to thin clients that decode locally.
func (c *Column) EncodedVector(i int) ([]byte, error) {
	return c.col.MarshalVector(i)
}

// DecodeEncodedVector decodes a single-vector envelope produced by
// Column.EncodedVector into dst (room for VectorSize values) and
// returns the number of values written.
func DecodeEncodedVector(data []byte, dst []float64) (int, error) {
	return format.UnmarshalVector(data, dst, nil)
}

// ScanStreamContentType is the media type of the selection-aware scan
// stream (the "ALPS" framed wire format): a client sends it in an
// Accept header to receive a filtered scan as compressed per-vector
// frames instead of raw little-endian float64s, and decodes the body
// with DecodeScanStream.
const ScanStreamContentType = format.ScanContentType

// BuildScanStream encodes the rows of the column in [lo, hi] as a
// selection-aware scan stream — the same framed body alpserved streams
// for Accept: application/x-alp-scan — and returns it with the total
// row count. Useful for fixtures and offline transport; servers stream
// frame-at-a-time instead of buffering.
func (c *Column) BuildScanStream(lo, hi float64) ([]byte, int) {
	return format.BuildScanStream(c.col, lo, hi)
}

// DecodeScanStream decodes a complete selection-aware scan stream into
// the selected rows, in position order, bit-identical to filtering the
// decoded column locally. Any structural defect — bad magic, truncated
// or corrupted frame, bitmap/count mismatch — returns an error along
// with the rows decoded before the defect.
func DecodeScanStream(data []byte) ([]float64, error) {
	d, err := format.NewScanDecoder(data)
	if err != nil {
		return nil, err
	}
	var out []float64
	for {
		rows, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rows...)
	}
}
