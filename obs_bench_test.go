package alp

import (
	"testing"
)

var benchSink []byte

// benchEncodeValues is sized at one full row-group so the benchmark
// exercises first-level sampling, second-stage choice and all 100
// vector encodes — the full instrumented encode hot path.
func benchEncodeValues() []float64 {
	values := make([]float64, RowGroupSize)
	for i := range values {
		values[i] = float64(i%100000) / 100
	}
	return values
}

// BenchmarkEncodeObsOff measures the encode hot path with metrics
// collection disabled: the instrumentation costs one nil-check branch
// per hook site.
func BenchmarkEncodeObsOff(b *testing.B) {
	DisableStats()
	values := benchEncodeValues()
	b.SetBytes(int64(len(values) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = Encode(values)
	}
}

// BenchmarkEncodeObsOn is the same path with the atomic collector
// enabled, quantifying the full (not just disabled) observability cost.
func BenchmarkEncodeObsOn(b *testing.B) {
	EnableStats()
	defer DisableStats()
	values := benchEncodeValues()
	b.SetBytes(int64(len(values) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = Encode(values)
	}
}

// TestEncodeObsOverheadGuard is the regression guard for the nil-safe
// collector pattern: enabling the collector must not make the encode
// hot path meaningfully slower, and with it disabled the only cost is
// a predicted branch per hook (measured at well under 2% — the loose
// 15% bound here absorbs CI timer noise while still catching an
// accidentally heavy hook, e.g. one that allocates or takes a lock).
func TestEncodeObsOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion skipped with -short")
	}
	values := benchEncodeValues()

	measure := func() float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = Encode(values)
			}
		})
		return float64(r.NsPerOp())
	}

	// Interleave and keep the fastest of 3 runs per mode to shrink
	// scheduler noise.
	best := func(fn func() float64) float64 {
		m := fn()
		for i := 0; i < 2; i++ {
			if v := fn(); v < m {
				m = v
			}
		}
		return m
	}
	DisableStats()
	off := best(measure)
	EnableStats()
	on := best(measure)
	DisableStats()

	if ratio := on / off; ratio > 1.15 {
		t.Fatalf("enabled-collector overhead %.1f%% exceeds 15%% guard (off %.0f ns/op, on %.0f ns/op)",
			100*(ratio-1), off, on)
	} else {
		t.Logf("collector overhead: %.2f%% (off %.0f ns/op, on %.0f ns/op)", 100*(ratio-1), off, on)
	}
}
