package alp

import (
	"testing"
)

var benchSink []byte

// benchEncodeValues is sized at one full row-group so the benchmark
// exercises first-level sampling, second-stage choice and all 100
// vector encodes — the full instrumented encode hot path.
func benchEncodeValues() []float64 {
	values := make([]float64, RowGroupSize)
	for i := range values {
		values[i] = float64(i%100000) / 100
	}
	return values
}

// BenchmarkEncodeObsOff measures the encode hot path with metrics
// collection disabled: the instrumentation costs one nil-check branch
// per hook site.
func BenchmarkEncodeObsOff(b *testing.B) {
	DisableStats()
	values := benchEncodeValues()
	b.SetBytes(int64(len(values) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = Encode(values)
	}
}

// BenchmarkEncodeObsOn is the same path with the atomic collector
// enabled, quantifying the full (not just disabled) observability cost.
func BenchmarkEncodeObsOn(b *testing.B) {
	EnableStats()
	defer DisableStats()
	values := benchEncodeValues()
	b.SetBytes(int64(len(values) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = Encode(values)
	}
}

// benchFilterColumn builds a compressed column whose vectors are
// partially selected by benchFilterPredicate, so the filtered
// aggregate runs the fused unpack+compare kernel and the gather on
// every vector — the paths that record stage-histogram samples when
// the collector is on.
func benchFilterColumn() *Column {
	return Compress(benchEncodeValues())
}

const benchFilterLo, benchFilterHi = 250.0, 750.0

// BenchmarkFilterObsOff measures the pushdown aggregate hot path with
// the collector disabled: each kernel's histogram hook costs one
// predicted branch.
func BenchmarkFilterObsOff(b *testing.B) {
	DisableStats()
	col := benchFilterColumn()
	b.SetBytes(int64(col.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.AggRange(benchFilterLo, benchFilterHi)
	}
}

// BenchmarkFilterObsOn is the same path with the collector recording
// into the lock-free stage histograms (filter, unpack, gather) — the
// full cost of per-kernel latency observation.
func BenchmarkFilterObsOn(b *testing.B) {
	EnableStats()
	defer DisableStats()
	col := benchFilterColumn()
	b.SetBytes(int64(col.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.AggRange(benchFilterLo, benchFilterHi)
	}
}

// TestEncodeObsOverheadGuard is the regression guard for the nil-safe
// collector pattern: enabling the collector must not make the encode
// hot path meaningfully slower, and with it disabled the only cost is
// a predicted branch per hook (measured at well under 2% — the loose
// 15% bound here absorbs CI timer noise while still catching an
// accidentally heavy hook, e.g. one that allocates or takes a lock).
func TestEncodeObsOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion skipped with -short")
	}
	values := benchEncodeValues()

	measure := func() float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = Encode(values)
			}
		})
		return float64(r.NsPerOp())
	}

	// Interleave and keep the fastest of 3 runs per mode to shrink
	// scheduler noise.
	best := func(fn func() float64) float64 {
		m := fn()
		for i := 0; i < 2; i++ {
			if v := fn(); v < m {
				m = v
			}
		}
		return m
	}
	DisableStats()
	off := best(measure)
	EnableStats()
	on := best(measure)
	DisableStats()

	if ratio := on / off; ratio > 1.15 {
		t.Fatalf("enabled-collector overhead %.1f%% exceeds 15%% guard (off %.0f ns/op, on %.0f ns/op)",
			100*(ratio-1), off, on)
	} else {
		t.Logf("collector overhead: %.2f%% (off %.0f ns/op, on %.0f ns/op)", 100*(ratio-1), off, on)
	}
}

// TestFilterObsOverheadGuard extends the overhead guard to the
// pushdown read path, where the collector records per-kernel stage
// histograms (fused filter, FFOR unpack, gather). Those kernels run
// in about a microsecond, so the stage hooks sample one call in a few
// rather than bracketing every call with clock reads; the steady cost
// per kernel is one uncontended atomic add, which must stay in the
// noise.
func TestFilterObsOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion skipped with -short")
	}
	col := benchFilterColumn()

	measure := func() float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				col.AggRange(benchFilterLo, benchFilterHi)
			}
		})
		return float64(r.NsPerOp())
	}
	best := func(fn func() float64) float64 {
		m := fn()
		for i := 0; i < 2; i++ {
			if v := fn(); v < m {
				m = v
			}
		}
		return m
	}
	DisableStats()
	off := best(measure)
	EnableStats()
	on := best(measure)
	DisableStats()

	// Measured steady-state cost is ~3% (sampled clock reads plus one
	// atomic tick per kernel; the per-vector counters flush batched per
	// partition). The bound is wider than the encode guard's because
	// each AggRange op is ~200µs — 4x more sensitive to scheduler noise
	// on a shared single-core runner than the ~800µs encode op.
	if ratio := on / off; ratio > 1.25 {
		t.Fatalf("histogram-recording overhead %.1f%% exceeds 25%% guard (off %.0f ns/op, on %.0f ns/op)",
			100*(ratio-1), off, on)
	} else {
		t.Logf("histogram overhead: %.2f%% (off %.0f ns/op, on %.0f ns/op)", 100*(ratio-1), off, on)
	}
}
