package alp

import (
	"encoding/json"
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/goalp/alp/internal/dataset"
)

// withStats runs fn with global metrics collection enabled and freshly
// zeroed, restoring the disabled state afterwards so other tests see
// the default configuration.
func withStats(t *testing.T, fn func()) {
	t.Helper()
	EnableStats()
	ResetStats()
	defer DisableStats()
	fn()
}

// decimalColumn builds nVec vectors of clean decimal values in disjoint
// per-vector bands (vector v holds 1000*v + small decimals), so scheme
// choice, exception counts and zone-map behaviour are all exactly
// predictable.
func decimalColumn(nVec int) []float64 {
	values := make([]float64, nVec*VectorSize)
	for i := range values {
		values[i] = float64(i/VectorSize)*1000 + float64(i%7)/100
	}
	return values
}

func TestStatsEncodeCounts(t *testing.T) {
	withStats(t, func() {
		values := decimalColumn(3) // 3 vectors, 1 row-group
		Encode(values)
		s := ReadStats()
		if s.RowGroupsALP != 1 || s.RowGroupsRD != 0 {
			t.Fatalf("row groups ALP/RD = %d/%d, want 1/0", s.RowGroupsALP, s.RowGroupsRD)
		}
		if s.VectorsEncoded != 3 {
			t.Fatalf("VectorsEncoded = %d, want 3", s.VectorsEncoded)
		}
		if s.EncodeExceptions != 0 {
			t.Fatalf("EncodeExceptions = %d, want 0", s.EncodeExceptions)
		}
		if s.EncodeValues != int64(len(values)) {
			t.Fatalf("EncodeValues = %d, want %d", s.EncodeValues, len(values))
		}
		if s.EncodeNs <= 0 {
			t.Fatalf("EncodeNs = %d, want > 0", s.EncodeNs)
		}
		// Every encoded decimal vector lands in the bit-width histogram.
		var hist int64
		for _, n := range s.BitWidthHist {
			hist += n
		}
		if hist != 3 {
			t.Fatalf("bit-width histogram holds %d vectors, want 3", hist)
		}
		// Second-stage accounting covers every vector exactly once.
		if got := s.SecondStageSkips + secondStageRuns(s); got != 3 {
			t.Fatalf("second-stage skips+runs = %d, want 3", got)
		}
	})
}

// TestStats32EncodeCounts asserts the float32 encode path feeds the
// same collector hooks as the 64-bit one.
func TestStats32EncodeCounts(t *testing.T) {
	withStats(t, func() {
		values := make([]float32, 3*VectorSize)
		for i := range values {
			values[i] = float32(i%1000) / 10
		}
		data := Encode32(values)
		s := ReadStats()
		if s.RowGroupsALP != 1 || s.RowGroupsRD != 0 {
			t.Fatalf("row groups ALP/RD = %d/%d, want 1/0", s.RowGroupsALP, s.RowGroupsRD)
		}
		if s.VectorsEncoded != 3 {
			t.Fatalf("VectorsEncoded = %d, want 3", s.VectorsEncoded)
		}
		if s.EncodeValues != int64(len(values)) {
			t.Fatalf("EncodeValues = %d, want %d", s.EncodeValues, len(values))
		}
		ResetStats()
		if _, err := Decode32(data); err != nil {
			t.Fatal(err)
		}
		s = ReadStats()
		if s.VectorsDecoded != 3 || s.DecodeValues != int64(len(values)) {
			t.Fatalf("decoded vectors/values = %d/%d, want 3/%d",
				s.VectorsDecoded, s.DecodeValues, len(values))
		}
	})
}

// secondStageRuns derives how many vectors ran second-stage sampling:
// each run tries at least one candidate, and skipped vectors try none,
// so runs = vectors encoded in decimal scheme minus skips.
func secondStageRuns(s Stats) int64 {
	runs := s.VectorsEncoded - s.SecondStageSkips
	if runs < 0 {
		return 0
	}
	return runs
}

func TestStatsRDFallbackCounts(t *testing.T) {
	withStats(t, func() {
		// Full-mantissa random doubles defeat the decimal scheme: the
		// row-group must fall back to ALP_rd and report its sampling.
		r := rand.New(rand.NewSource(7))
		values := make([]float64, 2*VectorSize)
		for i := range values {
			values[i] = r.NormFloat64()
		}
		col := Compress(values)
		if !col.UsedRD() {
			t.Skip("random data unexpectedly encodable as decimals")
		}
		s := ReadStats()
		if s.RowGroupsRD != 1 || s.RowGroupsALP != 0 {
			t.Fatalf("row groups ALP/RD = %d/%d, want 0/1", s.RowGroupsALP, s.RowGroupsRD)
		}
		if s.VectorsEncoded != 2 {
			t.Fatalf("VectorsEncoded = %d, want 2", s.VectorsEncoded)
		}
		if s.RDSampledRowGroups != 1 || s.RDCutsTried != 16 {
			t.Fatalf("RD sampling: %d groups, %d cuts, want 1 and 16",
				s.RDSampledRowGroups, s.RDCutsTried)
		}
		// RD vectors must not pollute the FFOR bit-width histogram.
		for w, n := range s.BitWidthHist {
			if n != 0 {
				t.Fatalf("hist[%d] = %d, want empty histogram for RD-only column", w, n)
			}
		}
	})
}

// TestStatsPipelineCounts asserts the worker-pool hooks thread through
// to the public Stats: a parallel encode over g row-groups reports g
// claims and the spawned worker count, and the parallel decode adds the
// same again.
func TestStatsPipelineCounts(t *testing.T) {
	withStats(t, func() {
		values := decimalColumn(2*RowGroupSize/VectorSize + 1) // 3 row-groups
		data := EncodeParallel(values, 2)
		s := ReadStats()
		if s.PipelineWorkers != 2 {
			t.Fatalf("PipelineWorkers = %d, want 2", s.PipelineWorkers)
		}
		if s.PipelineClaims != 3 {
			t.Fatalf("PipelineClaims = %d, want 3 (one per row-group)", s.PipelineClaims)
		}

		ResetStats()
		if _, err := DecodeParallel(data, 2); err != nil {
			t.Fatal(err)
		}
		s = ReadStats()
		if s.PipelineWorkers != 2 || s.PipelineClaims != 3 {
			t.Fatalf("decode pipeline workers/claims = %d/%d, want 2/3",
				s.PipelineWorkers, s.PipelineClaims)
		}

		// The serial path spawns no pool at all.
		ResetStats()
		EncodeParallel(values, 1)
		if s := ReadStats(); s.PipelineWorkers != 0 || s.PipelineClaims != 0 {
			t.Fatalf("serial encode touched pipeline counters: %+v", s)
		}
	})
}

func TestStatsSumRangeSkipCounts(t *testing.T) {
	withStats(t, func() {
		values := decimalColumn(5)
		col := Compress(values)
		ResetStats() // isolate the scan-side counters

		// The predicate selects exactly vector 2's band (values in
		// [2000, 2000.06]); zone maps must prune the other four vectors.
		sum, count, touched := col.SumRange(2000, 2000.07)
		if touched != 1 || count != VectorSize {
			t.Fatalf("touched %d count %d, want 1 and %d", touched, count, VectorSize)
		}
		var want float64
		for i := 2 * VectorSize; i < 3*VectorSize; i++ {
			want += values[i]
		}
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("sum = %v, want %v", sum, want)
		}

		s := ReadStats()
		if s.RangeScans != 1 {
			t.Fatalf("RangeScans = %d, want 1", s.RangeScans)
		}
		if s.VectorsDecoded != 1 {
			t.Fatalf("VectorsDecoded = %d, want 1", s.VectorsDecoded)
		}
		if s.VectorsSkipped != 4 {
			t.Fatalf("VectorsSkipped = %d, want 4", s.VectorsSkipped)
		}
		if got := s.SkipRate(); got != 0.8 {
			t.Fatalf("SkipRate = %v, want 0.8", got)
		}
		if s.DecodeValues != VectorSize {
			t.Fatalf("DecodeValues = %d, want %d", s.DecodeValues, VectorSize)
		}
	})
}

func TestStatsDisabledIsZero(t *testing.T) {
	DisableStats()
	ResetStats() // must be a safe no-op with collection off
	Encode(decimalColumn(2))
	if s := ReadStats(); s != (Stats{}) {
		t.Fatalf("stats collected while disabled: %+v", s)
	}
	if StatsEnabled() {
		t.Fatal("StatsEnabled() = true, want false")
	}
}

func TestStatsStringIsExpvarJSON(t *testing.T) {
	withStats(t, func() {
		Encode(decimalColumn(2))
		var m map[string]any
		if err := json.Unmarshal([]byte(ReadStats().String()), &m); err != nil {
			t.Fatalf("Stats.String() is not valid JSON: %v", err)
		}
		if m["vectors_encoded"].(float64) != 2 {
			t.Fatalf("vectors_encoded = %v, want 2", m["vectors_encoded"])
		}
	})
}

// TestMetricsJSONIncludesLiveHistograms guards the /metrics path used
// by alpbench: a Stats value carries only the counters, so rendering
// ReadStats().String() silently zeroes every lat_*/stage_* key.
// MetricsJSON must read the live collector and include real histogram
// samples alongside the counters.
func TestMetricsJSONIncludesLiveHistograms(t *testing.T) {
	withStats(t, func() {
		Encode(decimalColumn(2))
		var m map[string]any
		if err := json.Unmarshal([]byte(MetricsJSON()), &m); err != nil {
			t.Fatalf("MetricsJSON() is not valid JSON: %v", err)
		}
		if m["vectors_encoded"].(float64) != 2 {
			t.Fatalf("vectors_encoded = %v, want 2", m["vectors_encoded"])
		}
		if m["stage_encode_count"].(float64) == 0 {
			t.Fatal("stage_encode_count = 0: MetricsJSON dropped the live histograms")
		}
		if m["stage_encode_p50_ns"].(float64) <= 0 {
			t.Fatalf("stage_encode_p50_ns = %v, want > 0", m["stage_encode_p50_ns"])
		}
	})
	DisableStats()
	var m map[string]any
	if err := json.Unmarshal([]byte(MetricsJSON()), &m); err != nil {
		t.Fatalf("disabled MetricsJSON() is not valid JSON: %v", err)
	}
}

func TestColumnStats(t *testing.T) {
	values := decimalColumn(3)
	col := Compress(values)
	info, err := ColumnStats(col.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if info.Values != len(values) || info.NumVectors != 3 || info.NumRowGroups != 1 {
		t.Fatalf("layout: %d values %d vectors %d row-groups",
			info.Values, info.NumVectors, info.NumRowGroups)
	}
	if info.UsedRD {
		t.Fatal("UsedRD = true for decimal column")
	}
	if !info.HasZoneMap {
		t.Fatal("HasZoneMap = false, want true")
	}
	if info.Exceptions != col.Exceptions() {
		t.Fatalf("Exceptions = %d, want %d", info.Exceptions, col.Exceptions())
	}
	if info.BitsPerValue != col.BitsPerValue() {
		t.Fatalf("BitsPerValue = %v, want %v", info.BitsPerValue, col.BitsPerValue())
	}

	rg := info.RowGroups[0]
	if rg.Scheme != SchemeALP || rg.Start != 0 || rg.Values != len(values) {
		t.Fatalf("row-group 0: %+v", rg)
	}
	if len(rg.Combos) == 0 {
		t.Fatal("row-group 0 has no sampled combos")
	}
	if len(rg.Vectors) != 3 {
		t.Fatalf("row-group 0 has %d vectors, want 3", len(rg.Vectors))
	}
	sumBits, sumExc := 0, 0
	for i, v := range rg.Vectors {
		if v.Index != i {
			t.Fatalf("vector %d has index %d", i, v.Index)
		}
		if v.Values != VectorSize {
			t.Fatalf("vector %d has %d values", i, v.Values)
		}
		if v.F > v.E {
			t.Fatalf("vector %d combo (%d, %d) invalid", i, v.E, v.F)
		}
		if v.BitWidth > 64 {
			t.Fatalf("vector %d width %d", i, v.BitWidth)
		}
		sumBits += v.CompressedBits
		sumExc += v.Exceptions
	}
	if sumExc != rg.Exceptions {
		t.Fatalf("vector exceptions sum %d != row-group %d", sumExc, rg.Exceptions)
	}
	if sumBits > rg.CompressedBits {
		t.Fatalf("vector bits %d exceed row-group bits %d", sumBits, rg.CompressedBits)
	}

	// Info() on the in-memory column additionally carries the sampling
	// telemetry that the serialized stream does not.
	mem := Compress(values).Info()
	if len(mem.RowGroups[0].SecondStageTried) != 3 {
		t.Fatalf("SecondStageTried = %v, want 3 entries", mem.RowGroups[0].SecondStageTried)
	}
}

func TestColumnStatsRD(t *testing.T) {
	d, _ := dataset.ByName("POI-lat")
	values := d.Generate(2 * VectorSize)
	col := Compress(values)
	if !col.UsedRD() {
		t.Skip("POI-lat unexpectedly encoded as decimals")
	}
	info := col.Info()
	rg := info.RowGroups[0]
	if rg.Scheme != SchemeRD {
		t.Fatalf("scheme = %v, want ALP_rd", rg.Scheme)
	}
	if rg.CutPosition < 48 || rg.CutPosition > 63 {
		t.Fatalf("cut position %d out of [48, 63]", rg.CutPosition)
	}
	if rg.DictSize < 1 || rg.DictSize > 8 {
		t.Fatalf("dict size %d out of [1, 8]", rg.DictSize)
	}
	for _, v := range rg.Vectors {
		if want := uint(rg.CutPosition) + rg.CodeWidth; v.BitWidth != want {
			t.Fatalf("RD vector width %d, want %d", v.BitWidth, want)
		}
	}
}

func TestColumnStatsRejectsCorrupt(t *testing.T) {
	if _, err := ColumnStats([]byte("junk")); err == nil {
		t.Fatal("want error on garbage stream")
	}
}

func TestSchemeAccessors(t *testing.T) {
	col := Compress(decimalColumn(2))
	if col.NumRowGroups() != 1 {
		t.Fatalf("NumRowGroups = %d, want 1", col.NumRowGroups())
	}
	s, err := col.Scheme(0)
	if err != nil || s != SchemeALP {
		t.Fatalf("Scheme(0) = %v, %v", s, err)
	}
	if s.String() != "ALP" || SchemeRD.String() != "ALP_rd" {
		t.Fatalf("scheme names: %q, %q", s.String(), SchemeRD.String())
	}
	if _, err := col.Scheme(1); err == nil {
		t.Fatal("Scheme(1) out of range must error")
	}
	if _, err := col.Scheme(-1); err == nil {
		t.Fatal("Scheme(-1) must error")
	}
	if col.Exceptions() != 0 {
		t.Fatalf("Exceptions = %d, want 0 for clean decimals", col.Exceptions())
	}

	// An exception-bearing column reports them through the public API.
	values := decimalColumn(1)
	values[10] = math.Pi // full-mantissa value: certain exception
	col = Compress(values)
	if got, _ := col.Scheme(0); got == SchemeALP && col.Exceptions() == 0 {
		t.Fatal("math.Pi did not surface as an exception")
	}
}

// TestReadVectorInto checks the caller-owned-scratch access path,
// including the documented concurrent use of one shared Column.
func TestReadVectorInto(t *testing.T) {
	d, _ := dataset.ByName("Stocks-USA")
	values := d.Generate(4 * VectorSize)
	col, err := Open(Encode(values))
	if err != nil {
		t.Fatal(err)
	}

	// Sequential: matches ReadVector.
	want := make([]float64, VectorSize)
	got := make([]float64, VectorSize)
	scratch := make([]int64, VectorSize)
	for i := 0; i < col.NumVectors(); i++ {
		wn, err := col.ReadVector(i, want)
		if err != nil {
			t.Fatal(err)
		}
		gn, err := col.ReadVectorInto(i, got, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if gn != wn {
			t.Fatalf("vector %d: %d values, want %d", i, gn, wn)
		}
		for j := 0; j < gn; j++ {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("vector %d value %d differs", i, j)
			}
		}
	}

	// nil scratch allocates per call; short scratch errors.
	if _, err := col.ReadVectorInto(0, got, nil); err != nil {
		t.Fatalf("nil scratch: %v", err)
	}
	if _, err := col.ReadVectorInto(0, got, make([]int64, 8)); err == nil {
		t.Fatal("short scratch must error")
	}
	if _, err := col.ReadVectorInto(-1, got, scratch); err == nil {
		t.Fatal("negative index must error")
	}
	if _, err := col.ReadVectorInto(col.NumVectors(), got, scratch); err == nil {
		t.Fatal("out-of-range index must error")
	}

	// Concurrent: one shared Column, per-goroutine dst+scratch. Run
	// with -race this validates the documented contract.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]float64, VectorSize)
			scr := make([]int64, VectorSize)
			for i := 0; i < col.NumVectors(); i++ {
				n, err := col.ReadVectorInto(i, dst, scr)
				if err != nil {
					errs <- err
					return
				}
				lo := i * VectorSize
				for j := 0; j < n; j++ {
					if math.Float64bits(dst[j]) != math.Float64bits(values[lo+j]) {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
