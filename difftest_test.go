package alp

// difftest_test.go is the cross-codec differential-testing harness:
// one property-based driver runs every codec in the repo (alp, alp_rd,
// gorilla, chimp, chimp128, patas, elf, pde, gp) over the same
// fixed-seed generated datasets and asserts
//
//  1. bit-exact round-trips — decompress(compress(v)) reproduces every
//     input bit pattern, including NaN payloads, signed zeros,
//     infinities and subnormals;
//  2. identical filtered-aggregate results — the encoded-domain
//     pushdown path (engine.FilterAgg / Column.AggRange) must agree
//     with naive decode-then-filter and with a plain-slice oracle on
//     every seed, including exception-heavy and all-NaN vectors.
//
// The full run covers well over 1000 (dataset, codec) cases; -short
// caps the seed count so the race job stays inside its budget.

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/goalp/alp/internal/alprd"
	"github.com/goalp/alp/internal/chimp"
	"github.com/goalp/alp/internal/elf"
	"github.com/goalp/alp/internal/engine"
	"github.com/goalp/alp/internal/gorilla"
	"github.com/goalp/alp/internal/gp"
	"github.com/goalp/alp/internal/patas"
	"github.com/goalp/alp/internal/pde"
	"github.com/goalp/alp/internal/vector"
)

// diffCodec is one codec under differential test: roundTrip must
// reproduce the input bit-exactly. stream is non-nil for sequential
// codecs that can also serve as an engine relation.
type diffCodec struct {
	name       string
	roundTrip  func(values []float64) []float64
	compress   func(src []float64) []byte
	decompress func(dst []float64, data []byte) error
}

func streamCodec(name string, compress func([]float64) []byte,
	decompress func([]float64, []byte) error) diffCodec {
	return diffCodec{
		name: name,
		roundTrip: func(values []float64) []float64 {
			out := make([]float64, len(values))
			if err := decompress(out, compress(values)); err != nil {
				panic(name + ": " + err.Error())
			}
			return out
		},
		compress:   compress,
		decompress: decompress,
	}
}

// alprdRoundTrip drives the ALP_rd scheme directly (not via the
// sampler), so real-double datasets exercise it even when the format
// layer would have picked the decimal scheme and vice versa.
func alprdRoundTrip(values []float64) []float64 {
	out := make([]float64, len(values))
	if len(values) == 0 {
		return out
	}
	enc := alprd.Sample(values)
	for v := 0; v < vector.VectorsIn(len(values)); v++ {
		lo, hi := vector.Bounds(v, len(values))
		ev := enc.EncodeVector(values[lo:hi])
		enc.DecodeVector(&ev, out[lo:hi])
	}
	return out
}

func diffCodecs() []diffCodec {
	return []diffCodec{
		{name: "alp", roundTrip: func(values []float64) []float64 {
			got, err := Decode(Encode(values))
			if err != nil {
				panic("alp: " + err.Error())
			}
			return got
		}},
		{name: "alp_rd", roundTrip: alprdRoundTrip},
		streamCodec("gorilla", gorilla.Compress, gorilla.Decompress),
		streamCodec("chimp", chimp.Compress, chimp.Decompress),
		streamCodec("chimp128", chimp.CompressN, chimp.DecompressN),
		streamCodec("patas", patas.Compress, patas.Decompress),
		streamCodec("elf", elf.Compress, elf.Decompress),
		streamCodec("pde", pde.Compress, pde.Decompress),
		streamCodec("gp", gp.Compress, gp.Decompress),
	}
}

// diffShape generates one deterministic dataset family; n varies with
// the seed so vector and row-group boundaries are crossed at different
// offsets.
type diffShape struct {
	name string
	gen  func(r *rand.Rand, n int) []float64
}

func diffShapes() []diffShape {
	fill := func(f func(r *rand.Rand, i int) float64) func(*rand.Rand, int) []float64 {
		return func(r *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = f(r, i)
			}
			return out
		}
	}
	return []diffShape{
		{"decimals-2dp", fill(func(r *rand.Rand, i int) float64 {
			return float64(r.Intn(2_000_000))/100 - 10_000
		})},
		{"decimals-mixed-precision", fill(func(r *rand.Rand, i int) float64 {
			scale := math.Pow(10, float64(r.Intn(8)))
			return float64(r.Intn(1_000_000)) / scale
		})},
		{"real-doubles", fill(func(r *rand.Rand, i int) float64 {
			return r.NormFloat64() * 1e3
		})},
		{"exception-heavy", fill(func(r *rand.Rand, i int) float64 {
			switch r.Intn(10) {
			case 0:
				return math.NaN()
			case 1:
				return math.Inf(1 - 2*(i&1))
			case 2, 3:
				return r.NormFloat64() * 1e40 // far outside the encodable range
			default:
				return float64(r.Intn(100_000)) / 100
			}
		})},
		{"all-nan", fill(func(r *rand.Rand, i int) float64 {
			return math.NaN()
		})},
		{"constant", fill(func(r *rand.Rand, i int) float64 {
			return 42.42
		})},
		{"monotone-ramp", fill(func(r *rand.Rand, i int) float64 {
			return float64(i) / 128
		})},
		{"specials-mix", fill(func(r *rand.Rand, i int) float64 {
			specials := []float64{
				0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(),
				math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
				math.MaxFloat64, -math.MaxFloat64, 1.5,
			}
			return specials[r.Intn(len(specials))]
		})},
		{"large-magnitude", fill(func(r *rand.Rand, i int) float64 {
			return (r.Float64() - 0.5) * 1e19 // |v| can exceed the ±2^51 encodable band
		})},
		{"tiny-near-zero", fill(func(r *rand.Rand, i int) float64 {
			if r.Intn(2) == 0 {
				return math.Float64frombits(r.Uint64() & 0xFFFFF) // subnormals
			}
			return float64(r.Intn(200)-100) / 10000
		})},
		{"sawtooth-integers", fill(func(r *rand.Rand, i int) float64 {
			return float64(i % 977)
		})},
		{"random-bits", fill(func(r *rand.Rand, i int) float64 {
			return math.Float64frombits(r.Uint64())
		})},
		{"sparse-outliers", fill(func(r *rand.Rand, i int) float64 {
			if r.Intn(200) == 0 {
				return 1e15 + float64(r.Intn(1000))
			}
			return 7.25
		})},
	}
}

// diffPredicates derives a deterministic predicate set from the data:
// data-driven bands plus the fixed forms the pushdown translation must
// handle (unbounded, point, empty).
func diffPredicates(values []float64, r *rand.Rand) []engine.Predicate {
	var finite []float64
	for _, v := range values {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			finite = append(finite, v)
		}
	}
	preds := []engine.Predicate{
		engine.Between(math.Inf(-1), math.Inf(1)), // everything but NaN
		engine.Between(1, -1),                     // empty band
		engine.EQ(0),
	}
	if len(finite) > 0 {
		sort.Float64s(finite)
		a := finite[r.Intn(len(finite))]
		b := finite[r.Intn(len(finite))]
		if a > b {
			a, b = b, a
		}
		preds = append(preds,
			engine.Between(a, b),
			engine.GT(finite[len(finite)/2]),
			engine.LE(finite[len(finite)/4]),
			engine.EQ(finite[r.Intn(len(finite))]),
		)
	}
	return preds
}

// diffAggOracle folds the qualifying values of a plain slice in index
// order — the ground truth for every filtered-aggregate path.
func diffAggOracle(values []float64, p engine.Predicate) engine.Agg {
	a := engine.Agg{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range values {
		if p.Match(v) {
			a.Sum += v
			a.Count++
			if v < a.Min {
				a.Min = v
			}
			if v > a.Max {
				a.Max = v
			}
		}
	}
	return a
}

func bitsEqualAgg(a, b engine.Agg) bool {
	return math.Float64bits(a.Sum) == math.Float64bits(b.Sum) && a.Count == b.Count &&
		math.Float64bits(a.Min) == math.Float64bits(b.Min) &&
		math.Float64bits(a.Max) == math.Float64bits(b.Max)
}

// TestDifferentialAllCodecs is the harness driver. Every (shape, seed)
// dataset goes through every codec's round-trip and through every
// engine relation's filtered aggregates, all compared against the
// plain-slice oracle.
func TestDifferentialAllCodecs(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 2
	}
	codecs := diffCodecs()
	shapes := diffShapes()
	cases := 0

	for _, shape := range shapes {
		for seed := 0; seed < seeds; seed++ {
			r := rand.New(rand.NewSource(int64(1000000*len(shape.name) + seed)))
			// Size sweeps across vector boundaries; one seed per shape
			// pins the exact vector.Size edge.
			n := 1500 + (seed*911)%2048
			if seed == 1 {
				n = vector.Size
			}
			values := shape.gen(r, n)

			// 1. Round-trips: every codec, bit-exact.
			for _, c := range codecs {
				got := c.roundTrip(values)
				if len(got) != len(values) {
					t.Fatalf("%s/%s seed %d: %d values out, want %d",
						shape.name, c.name, seed, len(got), len(values))
				}
				for i := range got {
					if math.Float64bits(got[i]) != math.Float64bits(values[i]) {
						t.Fatalf("%s/%s seed %d value %d: got %016x, want %016x",
							shape.name, c.name, seed, i,
							math.Float64bits(got[i]), math.Float64bits(values[i]))
					}
				}
				cases++
			}

			// 2. Filtered aggregates: pushdown (ALP), fallback (streams,
			// uncompressed) and forced-naive must all match the oracle.
			rels := []*engine.Relation{
				engine.BuildALP(values),
				engine.BuildUncompressed(values),
			}
			for _, c := range codecs {
				if c.compress != nil {
					rels = append(rels, engine.BuildStream(c.name, values, c.compress, c.decompress))
				}
			}
			for _, p := range diffPredicates(values, r) {
				want := diffAggOracle(values, p)
				for _, rel := range rels {
					got, _ := rel.FilterAgg(1, p)
					if !bitsEqualAgg(got, want) {
						t.Fatalf("%s seed %d %s FilterAgg([%v,%v]) = %+v, want %+v",
							shape.name, seed, rel.Name, p.Lo, p.Hi, got, want)
					}
					naive, _ := rel.FilterAggNaive(1, p)
					if !bitsEqualAgg(naive, want) {
						t.Fatalf("%s seed %d %s FilterAggNaive([%v,%v]) = %+v, want %+v",
							shape.name, seed, rel.Name, p.Lo, p.Hi, naive, want)
					}
					if cnt := rel.FilterCount(1, p); cnt != want.Count {
						t.Fatalf("%s seed %d %s FilterCount([%v,%v]) = %d, want %d",
							shape.name, seed, rel.Name, p.Lo, p.Hi, cnt, want.Count)
					}
					// Parallel merge keeps Count/Min/Max exact.
					par, _ := rel.FilterAgg(3, p)
					if par.Count != want.Count ||
						math.Float64bits(par.Min) != math.Float64bits(want.Min) ||
						math.Float64bits(par.Max) != math.Float64bits(want.Max) {
						t.Fatalf("%s seed %d %s FilterAgg(3) = %+v, want count/min/max of %+v",
							shape.name, seed, rel.Name, par, want)
					}
					cases++
				}
			}

			// 3. The public column path (format-layer pushdown incl. the
			// RD fallback) against the same oracle.
			col := Compress(values)
			for _, p := range diffPredicates(values, r) {
				res := col.AggRange(p.Lo, p.Hi)
				want := diffAggOracle(values, p)
				if math.Float64bits(res.Sum) != math.Float64bits(want.Sum) ||
					int64(res.Count) != want.Count ||
					math.Float64bits(res.Min) != math.Float64bits(want.Min) ||
					math.Float64bits(res.Max) != math.Float64bits(want.Max) {
					t.Fatalf("%s seed %d Column.AggRange([%v,%v]) = %+v, want %+v",
						shape.name, seed, p.Lo, p.Hi, res, want)
				}
				cases++
			}
		}
	}

	t.Logf("differential harness: %d cases across %d codecs × %d shapes × %d seeds",
		cases, len(codecs), len(shapes), seeds)
	if !testing.Short() && cases < 1000 {
		t.Fatalf("only %d differential cases, want >= 1000 in full mode", cases)
	}
}
