module github.com/goalp/alp

go 1.22
