package alp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestStatsConcurrentReadResetEncode hammers ReadStats and ResetStats
// while encodes and decodes are updating the counters from other
// goroutines — the shape of a serving workload where /metrics is
// scraped (and occasionally reset) under load. Run under -race this
// guards the lock-free obs.Collector against regressions; the
// assertions only check the snapshot stays internally consistent.
func TestStatsConcurrentReadResetEncode(t *testing.T) {
	EnableStats()
	defer ResetStats()

	rng := rand.New(rand.NewSource(3))
	values := make([]float64, 4*VectorSize)
	for i := range values {
		values[i] = math.Round(rng.Float64()*10000) / 100
	}
	data := Encode(values)

	const (
		encoders = 4
		readers  = 4
		rounds   = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < encoders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				Encode(values)
				if _, err := Decode(data); err != nil {
					t.Errorf("decode: %v", err)
					return
				}
			}
		}()
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s := ReadStats()
				if s.VectorsEncoded < 0 || s.EncodeValues < 0 {
					t.Errorf("negative counters in snapshot: %+v", s)
					return
				}
				if g == 0 && i%50 == 25 {
					ResetStats()
				}
			}
		}(g)
	}
	wg.Wait()

	// After the dust settles the counters still move normally.
	ResetStats()
	Encode(values)
	if s := ReadStats(); s.EncodeValues != int64(len(values)) {
		t.Fatalf("EncodeValues after reset = %d, want %d", s.EncodeValues, len(values))
	}
}
